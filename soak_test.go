package adhocradio

// Soak tests: larger-scale end-to-end runs of every protocol, skipped under
// -short. They catch scaling regressions (step-budget exhaustion, quadratic
// blowups) that the fast unit tests cannot.

import "testing"

func soakGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	src := NewRand(777)
	gs := map[string]*Graph{
		"path":  Path(2048),
		"gnp":   GNPConnected(2048, 3.0/2048, src),
		"tree":  RandomTree(2048, src),
		"chain": StarChain(8, 128),
	}
	rl, err := RandomLayered(2048, 128, 0.25, src)
	if err != nil {
		t.Fatal(err)
	}
	gs["layered"] = rl
	cl, err := UniformCompleteLayered(2048, 64)
	if err != nil {
		t.Fatal(err)
	}
	gs["complete"] = cl
	return gs
}

func TestSoakRandomizedProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for name, g := range soakGraphs(t) {
		for _, p := range []Protocol{NewOptimalRandomized(), NewDecay()} {
			res, err := Broadcast(g, p, Config{Seed: 3}, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
			if !res.Completed {
				t.Fatalf("%s on %s incomplete", p.Name(), name)
			}
		}
	}
}

func TestSoakDeterministicProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	protos := []Protocol{
		NewRoundRobin(),
		NewSelectAndSend(),
		NewInterleaved(NewRoundRobin(), NewSelectAndSend()),
		NewDFSNeighborhood(),
		NewSpontaneousLinear(),
		NewObliviousDecay(5),
	}
	for name, g := range soakGraphs(t) {
		for _, p := range protos {
			res, err := Broadcast(g, p, Config{}, Options{})
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
			if !res.Completed {
				t.Fatalf("%s on %s incomplete", p.Name(), name)
			}
		}
	}
}

func TestSoakCompleteLayeredProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g, err := UniformCompleteLayered(4096, 128)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, NewCompleteLayered(), Config{}, Options{})
	if err != nil || !res.Completed {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

func TestSoakAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c, err := BuildAdversarialNetwork(NewSelectAndSend(), AdversaryParams{N: 4096, D: 256, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyAdversarialNetwork(NewSelectAndSend(), c, 0); err != nil {
		t.Fatal(err)
	}
	dc, err := BuildDirectedAdversarialNetwork(NewObliviousDecay(2), DirectedAdversaryParams{N: 2048, D: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDirectedAdversarialNetwork(NewObliviousDecay(2), dc, 0); err != nil {
		t.Fatal(err)
	}
}
