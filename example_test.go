package adhocradio_test

import (
	"fmt"
	"log"

	"adhocradio"
)

// The basic session: build a network, run the paper's optimal randomized
// broadcast, inspect the result.
func ExampleBroadcast() {
	g := adhocradio.Path(8)
	res, err := adhocradio.Broadcast(g, adhocradio.NewSelectAndSend(),
		adhocradio.Config{}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("completed:", res.Completed)
	fmt.Println("everyone informed:", res.InformedAt[7] > 0)
	// Output:
	// completed: true
	// everyone informed: true
}

// Deterministic protocols can be attacked by the Theorem 2 adversary; the
// construction certifies a delay and is verified against a real replay.
func ExampleBuildAdversarialNetwork() {
	c, err := adhocradio.BuildAdversarialNetwork(adhocradio.NewRoundRobin(),
		adhocradio.AdversaryParams{N: 256, D: 16, Force: true})
	if err != nil {
		log.Fatal(err)
	}
	res, err := adhocradio.VerifyAdversarialNetwork(adhocradio.NewRoundRobin(), c, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("radius:", c.D)
	fmt.Println("slower than the certified bound:", res.BroadcastTime >= c.LowerBoundSteps())
	// Output:
	// radius: 16
	// slower than the certified bound: true
}

// Universal sequences (Lemma 1) can be built and verified standalone.
func ExampleBuildUniversalSequence() {
	u, err := adhocradio.BuildUniversalSequence(1<<20, 1<<19)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("strict:", u.Strict())
	fmt.Println("verified:", u.Verify() == nil)
	// Output:
	// strict: true
	// verified: true
}

// Progress analysis turns a run into per-layer timing.
func ExampleAnalyzeProgress() {
	g := adhocradio.Path(5)
	res, err := adhocradio.Broadcast(g, adhocradio.NewRoundRobin(),
		adhocradio.Config{}, adhocradio.Options{})
	if err != nil {
		log.Fatal(err)
	}
	p, err := adhocradio.AnalyzeProgress(g, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("radius:", p.Radius)
	fmt.Println("layers done in order:", len(p.LayerDone) == 5)
	// Output:
	// radius: 4
	// layers done in order: true
}
