package adhocradio

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// The committed golden of this package's exported API surface. Any change
// to a public identifier or signature shows up as a diff here and must be
// regenerated deliberately (make apisurface) — accidental API breaks fail
// `make check` instead of shipping.
const apiSurfaceGolden = "lint/apisurface.txt"

var updateAPISurface = flag.Bool("update-apisurface", false,
	"rewrite "+apiSurfaceGolden+" from the current source")

func TestAPISurfaceGolden(t *testing.T) {
	got, err := renderAPISurface(".")
	if err != nil {
		t.Fatal(err)
	}
	if *updateAPISurface {
		if err := os.WriteFile(apiSurfaceGolden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", apiSurfaceGolden, strings.Count(got, "\n"))
		return
	}
	want, err := os.ReadFile(apiSurfaceGolden)
	if err != nil {
		t.Fatalf("missing golden %s (run `make apisurface` and commit it): %v", apiSurfaceGolden, err)
	}
	if string(want) == got {
		return
	}
	// Report the first diverging lines so the diff is readable without a
	// diff tool, then point at the regeneration path.
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Errorf("api surface drift at line %d:\n  golden:  %s\n  current: %s", i+1, w, g)
			break
		}
	}
	t.Fatalf("exported API surface differs from %s; if the change is intentional, "+
		"run `make apisurface`, review the diff, and commit the regenerated golden",
		apiSurfaceGolden)
}

// renderAPISurface lists every exported package-level identifier of the Go
// package in dir with its full declaration, sorted, one entry per line
// (struct and interface bodies keep their internal newlines). It is a
// purely syntactic rendering via go/parser + go/printer: signatures are
// reproduced as written, which is exactly what an API review wants to see,
// and it needs nothing outside the standard library.
func renderAPISurface(dir string) (string, error) {
	fset := token.NewFileSet()
	files, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	var decls []string
	for _, fe := range files {
		name := fe.Name()
		if fe.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return "", err
		}
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil || !d.Name.IsExported() {
					continue
				}
				fn := *d
				fn.Doc = nil
				fn.Body = nil
				s, err := renderNode(fset, &fn)
				if err != nil {
					return "", err
				}
				decls = append(decls, s)
			case *ast.GenDecl:
				kw := d.Tok.String()
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						cp := *sp
						cp.Doc = nil
						cp.Comment = nil
						s, err := renderNode(fset, &cp)
						if err != nil {
							return "", err
						}
						decls = append(decls, kw+" "+s)
					case *ast.ValueSpec:
						exported := false
						for _, n := range sp.Names {
							exported = exported || n.IsExported()
						}
						if !exported {
							continue
						}
						cp := *sp
						cp.Doc = nil
						cp.Comment = nil
						s, err := renderNode(fset, &cp)
						if err != nil {
							return "", err
						}
						decls = append(decls, kw+" "+s)
					}
				}
			}
		}
	}
	sort.Strings(decls)
	return strings.Join(decls, "\n") + "\n", nil
}

func renderNode(fset *token.FileSet, n ast.Node) (string, error) {
	var b bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&b, fset, n); err != nil {
		return "", fmt.Errorf("rendering %T: %w", n, err)
	}
	return b.String(), nil
}
