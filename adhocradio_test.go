package adhocradio

import (
	"bytes"
	"strings"
	"testing"
)

func TestBroadcastQuickstartFlow(t *testing.T) {
	src := NewRand(1)
	g, err := RandomLayered(128, 8, 0.3, src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, NewOptimalRandomized(), Config{Seed: 7}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.BroadcastTime <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestAllPublicProtocolsComplete(t *testing.T) {
	src := NewRand(2)
	g := GNPConnected(80, 0.06, src)
	protocols := []Protocol{
		NewOptimalRandomized(),
		NewOptimalRandomizedWithParams(RandomizedParams{KnownRadius: 8}),
		NewDecay(),
		NewRoundRobin(),
		NewSelectAndSend(),
		NewInterleaved(NewRoundRobin(), NewSelectAndSend()),
	}
	for _, p := range protocols {
		res, err := Broadcast(g, p, Config{Seed: 3}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if !res.Completed {
			t.Fatalf("%s incomplete", p.Name())
		}
	}
}

func TestCompleteLayeredProtocolOnItsClass(t *testing.T) {
	g, err := UniformCompleteLayered(200, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Broadcast(g, NewCompleteLayered(), Config{}, Options{})
	if err != nil || !res.Completed {
		t.Fatalf("res=%+v err=%v", res, err)
	}
}

func TestTopologyGenerators(t *testing.T) {
	src := NewRand(3)
	graphs := map[string]*Graph{
		"path":  Path(10),
		"star":  Star(10),
		"cliq":  Clique(6),
		"grid":  Grid(3, 4),
		"tree":  RandomTree(20, src),
		"gnp":   GNPConnected(20, 0.2, src),
		"disk":  UnitDisk(25, 0.3, src),
		"chain": StarChain(2, 3),
		"cat":   Caterpillar(4, 2),
	}
	cl, err := CompleteLayeredNetwork([]int{3, 2})
	if err != nil {
		t.Fatal(err)
	}
	graphs["layers"] = cl
	rl, err := RandomLayered(30, 5, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	graphs["rlayers"] = rl
	dl, err := DirectedLayered(30, 5, 0.2, src)
	if err != nil {
		t.Fatal(err)
	}
	graphs["dlayers"] = dl
	for name, g := range graphs {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestAdversaryFacade(t *testing.T) {
	c, err := BuildAdversarialNetwork(NewRoundRobin(), AdversaryParams{N: 256, D: 16, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := VerifyAdversarialNetwork(NewRoundRobin(), c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BroadcastTime < c.LowerBoundSteps() {
		t.Fatalf("time %d below bound %d", res.BroadcastTime, c.LowerBoundSteps())
	}
}

func TestUniversalSequenceFacade(t *testing.T) {
	u, err := BuildUniversalSequence(1<<20, 1<<19)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildUniversalSequenceRelaxed(1<<10, 1<<8); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentFacade(t *testing.T) {
	if len(Experiments()) != 17 {
		t.Fatalf("%d experiments", len(Experiments()))
	}
	var buf bytes.Buffer
	tab, err := RunExperiment("E2", ExperimentConfig{Seed: 1, Quick: true, Trials: 2}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 || !strings.Contains(buf.String(), "E2") {
		t.Fatal("experiment produced no output")
	}
	if _, err := RunExperiment("E0", ExperimentConfig{}, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestDefaultMaxStepsExposed(t *testing.T) {
	if DefaultMaxSteps(100) <= 0 {
		t.Fatal("bad default")
	}
}
