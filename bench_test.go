package adhocradio

// One benchmark per reproduction experiment (E1–E17 of DESIGN.md) at full
// scale, plus micro-benchmarks of each broadcasting algorithm on fixed
// topologies. The experiment benchmarks regenerate the tables of
// EXPERIMENTS.md; run with
//
//	go test -bench=. -benchmem
//
// Broadcast benchmarks report steps/op (simulated radio steps per
// broadcast) next to wall time, since simulated steps are the paper's
// complexity measure.

import (
	"io"
	"testing"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := RunExperiment(id, ExperimentConfig{Seed: uint64(i + 1), Trials: 3}, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkE1RandomizedLargeD regenerates E1: KP vs BGI at D = n/16
// (Theorem 1's advantage regime).
func BenchmarkE1RandomizedLargeD(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2RandomizedSmallD regenerates E2: the log²n-dominated regime.
func BenchmarkE2RandomizedSmallD(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3LayeredHardness regenerates E3: complete layered networks as
// the hardest randomized instances.
func BenchmarkE3LayeredHardness(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4AdversarialLowerBound regenerates E4: the Theorem 2 adversary
// against round-robin and Select-and-Send, with Lemma 9 verification.
func BenchmarkE4AdversarialLowerBound(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5SelectAndSend regenerates E5: O(n log n) across topologies.
func BenchmarkE5SelectAndSend(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6CompleteLayered regenerates E6: O(n + D log n) vs the refuted
// Ω(n log D).
func BenchmarkE6CompleteLayered(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7InterleavingCrossover regenerates E7: the round-robin /
// Select-and-Send crossover near D ≈ log n.
func BenchmarkE7InterleavingCrossover(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8UniversalSequenceAblation regenerates E8: Stage(D,i) with and
// without the universal-sequence step.
func BenchmarkE8UniversalSequenceAblation(b *testing.B) { benchExperiment(b, "E8") }

// Micro-benchmarks: one broadcast per iteration on a fixed topology.

func benchBroadcast(b *testing.B, build func() (*Graph, error), mk func() Protocol) {
	b.Helper()
	g, err := build()
	if err != nil {
		b.Fatal(err)
	}
	totalSteps := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Broadcast(g, mk(), Config{Seed: uint64(i + 1)}, Options{})
		if err != nil {
			b.Fatal(err)
		}
		totalSteps += res.BroadcastTime
	}
	b.ReportMetric(float64(totalSteps)/float64(b.N), "steps/op")
}

func BenchmarkBroadcastKPLayered(b *testing.B) {
	benchBroadcast(b,
		func() (*Graph, error) { return RandomLayered(2048, 128, 0.3, NewRand(1)) },
		func() Protocol { return NewOptimalRandomized() })
}

func BenchmarkBroadcastBGILayered(b *testing.B) {
	benchBroadcast(b,
		func() (*Graph, error) { return RandomLayered(2048, 128, 0.3, NewRand(1)) },
		func() Protocol { return NewDecay() })
}

func BenchmarkBroadcastSelectAndSendTree(b *testing.B) {
	benchBroadcast(b,
		func() (*Graph, error) { return RandomTree(1024, NewRand(2)), nil },
		func() Protocol { return NewSelectAndSend() })
}

func BenchmarkBroadcastRoundRobinLayered(b *testing.B) {
	benchBroadcast(b,
		func() (*Graph, error) { return RandomLayered(1024, 16, 0.3, NewRand(3)) },
		func() Protocol { return NewRoundRobin() })
}

func BenchmarkBroadcastCompleteLayered(b *testing.B) {
	benchBroadcast(b,
		func() (*Graph, error) { return UniformCompleteLayered(2048, 64) },
		func() Protocol { return NewCompleteLayered() })
}

func BenchmarkAdversaryBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := BuildAdversarialNetwork(NewSelectAndSend(),
			AdversaryParams{N: 1024, D: 64, Force: true})
		if err != nil {
			b.Fatal(err)
		}
		if c.G.N() != 1025 {
			b.Fatal("bad construction")
		}
	}
}

func BenchmarkUniversalSequenceBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildUniversalSequence(1<<20, 1<<19); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension-experiment benchmarks (E9–E13; not paper tables, see DESIGN.md).

// BenchmarkE9MessageComplexity regenerates the energy table.
func BenchmarkE9MessageComplexity(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10NeighborhoodKnowledge regenerates the [2]-DFS vs
// Select-and-Send comparison.
func BenchmarkE10NeighborhoodKnowledge(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11ModelLandscape regenerates the §1.1 model comparison.
func BenchmarkE11ModelLandscape(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12DirectedHardness regenerates the directed adversarial table.
func BenchmarkE12DirectedHardness(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13DirectedRandomized regenerates the §2 directed-generality
// check.
func BenchmarkE13DirectedRandomized(b *testing.B) { benchExperiment(b, "E13") }

// Fault-extension benchmarks (E15–E17): degradation curves under link
// loss, jamming, and crashes. Dominated by the censored Select-and-Send
// runs, so these are the slowest experiment benchmarks.

// BenchmarkE15LinkLossDegradation regenerates the loss sweep.
func BenchmarkE15LinkLossDegradation(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16JammingDegradation regenerates the jammer sweep.
func BenchmarkE16JammingDegradation(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17CrashTolerance regenerates the DFS-vs-Decay crash table.
func BenchmarkE17CrashTolerance(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkDirectedAdversaryBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := BuildDirectedAdversarialNetwork(NewObliviousDecay(7),
			DirectedAdversaryParams{N: 512, D: 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(c.Layers) != 8 {
			b.Fatal("bad construction")
		}
	}
}
