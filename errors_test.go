package adhocradio

import (
	"context"
	"errors"
	"io"
	"testing"
)

// TestBroadcastContextCancellation: a pre-cancelled context aborts before
// the first step, and the error is discriminable with errors.Is.
func TestBroadcastContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := BroadcastContext(ctx, Path(64), NewRoundRobin(), Config{}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled run returned a Result: %+v", res)
	}
}

// TestBroadcastContextBackground matches Broadcast bit-for-bit.
func TestBroadcastContextBackground(t *testing.T) {
	g := Path(32)
	a, err := BroadcastContext(context.Background(), g, NewSelectAndSend(), Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Broadcast(g, NewSelectAndSend(), Config{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.BroadcastTime != b.BroadcastTime || a.Transmissions != b.Transmissions {
		t.Fatalf("BroadcastContext diverged from Broadcast: %+v vs %+v", a, b)
	}
}

// TestErrBudgetExhausted: step-budget exhaustion is a typed error carrying
// a usable partial result.
func TestErrBudgetExhausted(t *testing.T) {
	res, err := Broadcast(Path(64), NewRoundRobin(), Config{}, Options{MaxSteps: 3})
	if !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("err = %v, want ErrBudgetExhausted", err)
	}
	if res == nil || res.StepsSimulated != 3 {
		t.Fatalf("partial result missing or wrong: %+v", res)
	}
}

// TestTopologySpecFacade: the root alias builds graphs and reports typed
// validation errors.
func TestTopologySpecFacade(t *testing.T) {
	g, err := TopologySpec{Kind: "grid", Rows: 3, Cols: 4}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("grid spec built %d nodes, want 12", g.N())
	}
	if _, err := (TopologySpec{Kind: "warp", N: 4}).Build(); !errors.Is(err, ErrInvalidTopologySpec) {
		t.Fatalf("err = %v, want ErrInvalidTopologySpec", err)
	}
	if len(TopologyKinds()) == 0 {
		t.Fatal("TopologyKinds returned nothing")
	}
}

// TestErrUnknownExperiment: the facade surfaces the experiment sentinel.
func TestErrUnknownExperiment(t *testing.T) {
	if _, err := RunExperiment("E99", ExperimentConfig{}, io.Discard); !errors.Is(err, ErrUnknownExperiment) {
		t.Fatalf("err = %v, want ErrUnknownExperiment", err)
	}
}
